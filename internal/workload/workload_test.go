package workload

import (
	"testing"

	"ecodb/internal/engine"
	"ecodb/internal/hw/system"
	"ecodb/internal/sim"
	"ecodb/internal/tpch"
)

func testEngine(t testing.TB) (*engine.Engine, *system.Machine) {
	t.Helper()
	m := system.NewSUT()
	e := engine.New(engine.ProfileMySQLMemory(), m)
	tpch.NewGenerator(0.01, 9).Load(e.Catalog(), tpch.Lineitem)
	return e, m
}

func TestNewQueriesIDs(t *testing.T) {
	e, _ := testEngine(t)
	qs := NewQueries("sel", tpch.QuantityWorkload(e.Catalog(), 3))
	if len(qs) != 3 {
		t.Fatalf("got %d queries", len(qs))
	}
	if qs[0].ID != "sel-01" || qs[2].ID != "sel-03" {
		t.Fatalf("IDs = %q, %q", qs[0].ID, qs[2].ID)
	}
}

func TestRunSequentialAccounting(t *testing.T) {
	e, m := testEngine(t)
	qs := NewQueries("sel", tpch.QuantityWorkload(e.Catalog(), 4))
	res := RunSequential(e, m.Clock, qs)

	if len(res.Queries) != 4 {
		t.Fatalf("results for %d queries", len(res.Queries))
	}
	// Back-to-back execution: each query starts when the previous ends,
	// responses measured from batch issue are strictly increasing.
	for i, q := range res.Queries {
		if q.End <= q.Start {
			t.Fatalf("query %d has non-positive window", i)
		}
		if i > 0 && q.Start != res.Queries[i-1].End {
			t.Fatalf("query %d did not start when %d ended", i, i-1)
		}
	}
	if res.Total != res.Queries[3].End {
		t.Fatal("total must equal last completion")
	}
	if res.TotalRows() <= 0 {
		t.Fatal("no rows counted")
	}
}

func TestRunSharedMatchesSequentialRowsAndFinishesFaster(t *testing.T) {
	// Same band workload on two identical engines: the shared run must
	// return the same per-query cardinalities as the sequential run and —
	// reading the heap once instead of N times — finish in strictly less
	// simulated time.
	eSeq, mSeq := testEngine(t)
	seq := RunSequential(eSeq, mSeq.Clock, NewQueries("band", tpch.QuantityBandWorkload(eSeq.Catalog(), 6)))

	eSh, mSh := testEngine(t)
	sh := RunShared(eSh, mSh.Clock, NewQueries("band", tpch.QuantityBandWorkload(eSh.Catalog(), 6)))

	if len(sh.Queries) != len(seq.Queries) {
		t.Fatalf("%d shared results vs %d sequential", len(sh.Queries), len(seq.Queries))
	}
	for i := range sh.Queries {
		if sh.Queries[i].Rows != seq.Queries[i].Rows {
			t.Fatalf("query %d: %d rows shared vs %d sequential", i, sh.Queries[i].Rows, seq.Queries[i].Rows)
		}
		if sh.Queries[i].Start != 0 {
			t.Fatalf("query %d: shared start %v, want 0 (batch issue)", i, sh.Queries[i].Start)
		}
		if sh.Queries[i].End <= 0 || sh.Queries[i].End > sh.Total {
			t.Fatalf("query %d: end %v outside (0, %v]", i, sh.Queries[i].End, sh.Total)
		}
	}
	if sh.Total >= seq.Total {
		t.Fatalf("shared total %v not faster than sequential %v", sh.Total, seq.Total)
	}
}

func TestMeanAndMaxResponse(t *testing.T) {
	r := RunResult{Queries: []QueryResult{
		{End: 1 * sim.Second},
		{End: 2 * sim.Second},
		{End: 3 * sim.Second},
	}}
	if got := r.MeanResponse(); got != 2*sim.Second {
		t.Fatalf("mean = %v", got)
	}
	if got := r.MaxResponse(); got != 3*sim.Second {
		t.Fatalf("max = %v", got)
	}
	var empty RunResult
	if empty.MeanResponse() != 0 || empty.MaxResponse() != 0 {
		t.Fatal("empty result should have zero responses")
	}
}

// The sequential mean response over n uniform queries approaches
// (n+1)/2 × t₁ — the baseline the paper's Figure 6 compares QED against.
func TestSequentialMeanResponseShape(t *testing.T) {
	e, m := testEngine(t)
	qs := NewQueries("sel", tpch.QuantityWorkload(e.Catalog(), 10))
	res := RunSequential(e, m.Clock, qs)

	t1 := res.Queries[0].End.Seconds()
	mean := res.MeanResponse().Seconds()
	want := t1 * 5.5 // (10+1)/2
	if diff := (mean - want) / want; diff > 0.15 || diff < -0.15 {
		t.Fatalf("mean response %v deviates %.1f%% from (n+1)/2·t1 = %v",
			mean, diff*100, want)
	}
}
