// Benchmarks for the morsel-driven parallel executor, measuring real Go
// wall-clock (ns/op). Simulated durations and joules are worker-count
// invariant by design — the coordinator replays all simulated accounting
// in page order — so the only thing workers change, and the thing measured
// here, is how fast the host machine races through the query's real work
// (the paper's energy argument: finishing sooner is what saves joules).
package main

import (
	"fmt"
	"testing"

	"ecodb/internal/exec"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
)

// BenchmarkParallelScan runs a filtered TPC-H-style lineitem scan through
// the morsel dispatcher at increasing worker counts. workers=1 is the
// serial pull pipeline (CompileParallel falls back to Compile). The
// predicate is an AND chain, which walks the interpreted evaluator per row
// — the worker-side compute the dispatcher exists to spread across cores.
// Expect ≥1.5× at 4 workers on a ≥4-core host; single-core hosts (CI
// smoke runs under constrained runners) see no speedup, only unchanged
// results.
func BenchmarkParallelScan(b *testing.B) {
	tb := benchTable(b)
	pred := expr.And{Terms: []expr.Expr{
		expr.Cmp{Op: expr.LT, L: tb.Schema.Col("l_quantity"), R: expr.Const{V: expr.Int(45)}},
		expr.Cmp{Op: expr.GE, L: tb.Schema.Col("l_extendedprice"), R: expr.Const{V: expr.Float(1000)}},
		expr.Cmp{Op: expr.GT, L: tb.Schema.Col("l_discount"), R: expr.Const{V: expr.Float(0.01)}},
	}}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var rows int64
			for i := 0; i < b.N; i++ {
				ctx := benchCtx()
				rows = 0
				op := exec.CompileParallel(plan.NewScan(tb, pred), workers)
				if err := exec.Drain(ctx, op, func(batch *expr.Batch) error {
					rows += int64(batch.Len())
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				ctx.Flush()
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkParallelScanProject adds a projection stage to the fragment —
// per-row arithmetic plus output-row assembly that all runs worker-side.
func BenchmarkParallelScanProject(b *testing.B) {
	tb := benchTable(b)
	price := tb.Schema.Col("l_extendedprice")
	disc := tb.Schema.Col("l_discount")
	p := plan.NewProject(
		plan.NewFilter(plan.NewScan(tb, nil), expr.Cmp{
			Op: expr.LT, L: tb.Schema.Col("l_quantity"), R: expr.Const{V: expr.Int(30)}}),
		[]expr.Expr{expr.Arith{Op: expr.Mul, L: price, R: expr.Arith{
			Op: expr.Sub, L: expr.Const{V: expr.Float(1)}, R: disc}}},
		[]string{"revenue"}, []expr.Kind{expr.KindFloat})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := benchCtx()
				op := exec.CompileParallel(p, workers)
				if err := exec.Drain(ctx, op, nil); err != nil {
					b.Fatal(err)
				}
				ctx.Flush()
			}
		})
	}
}
