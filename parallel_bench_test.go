// Benchmarks for the morsel-driven parallel executor, measuring real Go
// wall-clock (ns/op). Simulated durations and joules are worker-count
// invariant by design — the coordinator replays all simulated accounting
// in page order — so the only thing workers change, and the thing measured
// here, is how fast the host machine races through the query's real work
// (the paper's energy argument: finishing sooner is what saves joules).
package main

import (
	"fmt"
	"testing"

	"ecodb/internal/catalog"
	"ecodb/internal/exec"
	"ecodb/internal/expr"
	"ecodb/internal/plan"
	"ecodb/internal/tpch"
)

// BenchmarkParallelScan runs a filtered TPC-H-style lineitem scan through
// the morsel dispatcher at increasing worker counts. workers=1 is the
// serial pull pipeline (CompileParallel falls back to Compile). The
// predicate is an AND chain, which walks the interpreted evaluator per row
// — the worker-side compute the dispatcher exists to spread across cores.
// Expect ≥1.5× at 4 workers on a ≥4-core host; single-core hosts (CI
// smoke runs under constrained runners) see no speedup, only unchanged
// results.
func BenchmarkParallelScan(b *testing.B) {
	tb := benchTable(b)
	pred := expr.And{Terms: []expr.Expr{
		expr.Cmp{Op: expr.LT, L: tb.Schema.Col("l_quantity"), R: expr.Const{V: expr.Int(45)}},
		expr.Cmp{Op: expr.GE, L: tb.Schema.Col("l_extendedprice"), R: expr.Const{V: expr.Float(1000)}},
		expr.Cmp{Op: expr.GT, L: tb.Schema.Col("l_discount"), R: expr.Const{V: expr.Float(0.01)}},
	}}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var rows int64
			for i := 0; i < b.N; i++ {
				ctx := benchCtx()
				rows = 0
				op := exec.CompileParallel(plan.NewScan(tb, pred), workers)
				if err := exec.Drain(ctx, op, func(batch *expr.Batch) error {
					rows += int64(batch.Len())
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				ctx.Flush()
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkParallelAgg runs the Q1-shaped pricing-summary aggregation —
// grouped SUM/AVG of l_extendedprice·(1−l_discount) — through the parallel
// pre-aggregation path at increasing worker counts. Workers run the scan
// fragment AND fold their morsels into partial group tables (column-wise
// key encoding, batch-wise argument evaluation); the coordinator only
// merges per-morsel partials in page order. This is the aggregation-heavy
// analytical shape that dominates the energy bill, and the acceptance bar
// is ≥1.5× at 4 workers on a ≥4-core host; simulated results, durations,
// and joules stay bit-identical at every worker count (see
// TestParallelMatchesSerialBitIdentically). Single-core hosts see no
// speedup, only unchanged results.
func BenchmarkParallelAgg(b *testing.B) {
	tb := benchTable(b)
	price := tb.Schema.Col("l_extendedprice")
	disc := tb.Schema.Col("l_discount")
	revenue := expr.Arith{Op: expr.Mul, L: price,
		R: expr.Arith{Op: expr.Sub, L: expr.Const{V: expr.Float(1)}, R: disc}}
	p := plan.NewAgg(
		plan.NewScan(tb, expr.Cmp{Op: expr.LT, L: tb.Schema.Col("l_quantity"), R: expr.Const{V: expr.Int(45)}}),
		[]int{tb.Schema.MustIndex("l_quantity")},
		[]plan.AggSpec{
			{Func: plan.Sum, Arg: revenue, Name: "revenue"},
			{Func: plan.Avg, Arg: revenue, Name: "avg_revenue"},
			{Func: plan.Count, Name: "n"},
		})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var groups int64
			for i := 0; i < b.N; i++ {
				ctx := benchCtx()
				groups = 0
				op := exec.CompileParallel(p, workers)
				if err := exec.Drain(ctx, op, func(batch *expr.Batch) error {
					groups += int64(batch.Len())
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				ctx.Flush()
			}
			b.ReportMetric(float64(groups), "groups")
		})
	}
}

// benchJoinTables loads the lineitem + supplier pair for the join-build
// benchmark.
func benchJoinTables(b *testing.B) (build, probe *catalog.Table) {
	b.Helper()
	cat := catalog.NewCatalog()
	tpch.NewGenerator(0.02, 42).Load(cat, tpch.Lineitem, tpch.Supplier)
	return cat.MustTable(tpch.Lineitem), cat.MustTable(tpch.Supplier)
}

// BenchmarkJoinBuild measures the radix-partitioned hash-join build: the
// whole lineitem table on the build side (morsel-parallel scan, then
// parallel row materialization, key hashing, and per-partition table
// construction — one partition per worker) against a deliberately tiny
// probe, so build cost dominates. Expect ≥1.5× at 4 workers on a ≥4-core
// host; simulated accounting is worker-count invariant.
func BenchmarkJoinBuild(b *testing.B) {
	li, supp := benchJoinTables(b)
	probe := plan.NewScan(supp, expr.Cmp{
		Op: expr.LE, L: supp.Schema.Col("s_suppkey"), R: expr.Const{V: expr.Int(4)}})
	p := plan.NewHashJoin(
		plan.NewScan(li, nil), probe,
		li.Schema.MustIndex("l_suppkey"), supp.Schema.MustIndex("s_suppkey"), nil)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var rows int64
			for i := 0; i < b.N; i++ {
				ctx := benchCtx()
				rows = 0
				op := exec.CompileParallel(p, workers)
				if err := exec.Drain(ctx, op, func(batch *expr.Batch) error {
					rows += int64(batch.Len())
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				ctx.Flush()
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkParallelSort runs an ORDER BY revenue DESC over a projected
// lineitem fragment through the parallel sort: workers run the fragment,
// copy survivors into run-local buffers, and sort each run by
// (keys, global ordinal); the coordinator merges the sorted runs with a
// loser tree. The per-row comparator work — the dominant cost of the
// serial sortOp — moves worker-side, so the acceptance bar is ≥1.5× at 4
// workers on a ≥4-core host; output order, simulated durations, and
// joules stay bit-identical at every worker count (see the sort plans in
// TestParallelMatchesSerialBitIdentically). Single-core hosts see no
// speedup, only unchanged results.
func BenchmarkParallelSort(b *testing.B) {
	tb := benchTable(b)
	price := tb.Schema.Col("l_extendedprice")
	disc := tb.Schema.Col("l_discount")
	revenue := expr.Arith{Op: expr.Mul, L: price,
		R: expr.Arith{Op: expr.Sub, L: expr.Const{V: expr.Float(1)}, R: disc}}
	p := plan.NewSort(
		plan.NewProject(
			plan.NewFilter(plan.NewScan(tb, nil), expr.Cmp{
				Op: expr.LT, L: tb.Schema.Col("l_quantity"), R: expr.Const{V: expr.Int(45)}}),
			[]expr.Expr{revenue, tb.Schema.Col("l_orderkey")},
			[]string{"revenue", "l_orderkey"}, []expr.Kind{expr.KindFloat, expr.KindInt}),
		plan.SortKey{Col: 0, Desc: true})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var rows int64
			for i := 0; i < b.N; i++ {
				ctx := benchCtx()
				rows = 0
				op := exec.CompileParallel(p, workers)
				if err := exec.Drain(ctx, op, func(batch *expr.Batch) error {
					rows += int64(batch.Len())
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				ctx.Flush()
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkJoinProbe measures the morsel-parallel hash-join probe: a tiny
// supplier build (single-map path) probed by the whole lineitem table on
// l_suppkey, so worker-side probe hashing, matching, and output assembly
// dominate. The coordinator only replays accounting and merges output
// batches in morsel order. Expect ≥1.5× at 4 workers on a ≥4-core host;
// simulated accounting is worker-count invariant.
func BenchmarkJoinProbe(b *testing.B) {
	li, supp := benchJoinTables(b)
	p := plan.NewHashJoin(
		plan.NewScan(supp, nil), plan.NewScan(li, nil),
		supp.Schema.MustIndex("s_suppkey"), li.Schema.MustIndex("l_suppkey"), nil)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var rows int64
			for i := 0; i < b.N; i++ {
				ctx := benchCtx()
				rows = 0
				op := exec.CompileParallel(p, workers)
				if err := exec.Drain(ctx, op, func(batch *expr.Batch) error {
					rows += int64(batch.Len())
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				ctx.Flush()
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkParallelScanProject adds a projection stage to the fragment —
// per-row arithmetic plus output-row assembly that all runs worker-side.
func BenchmarkParallelScanProject(b *testing.B) {
	tb := benchTable(b)
	price := tb.Schema.Col("l_extendedprice")
	disc := tb.Schema.Col("l_discount")
	p := plan.NewProject(
		plan.NewFilter(plan.NewScan(tb, nil), expr.Cmp{
			Op: expr.LT, L: tb.Schema.Col("l_quantity"), R: expr.Const{V: expr.Int(30)}}),
		[]expr.Expr{expr.Arith{Op: expr.Mul, L: price, R: expr.Arith{
			Op: expr.Sub, L: expr.Const{V: expr.Float(1)}, R: disc}}},
		[]string{"revenue"}, []expr.Kind{expr.KindFloat})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := benchCtx()
				op := exec.CompileParallel(p, workers)
				if err := exec.Drain(ctx, op, nil); err != nil {
					b.Fatal(err)
				}
				ctx.Flush()
			}
		})
	}
}
