package main

import (
	"fmt"
	"strings"
	"testing"

	"ecodb/internal/engine"
	"ecodb/internal/hw/system"
	"ecodb/internal/opt"
	"ecodb/internal/sql"
	"ecodb/internal/tpch"
)

// TestGoldenPlans pins the cost-and-energy optimizer's plan choices: the
// EXPLAIN rendering of TPC-H Q5 under the latency and joules objectives,
// and the access-path flip the joules objective makes when ten queries are
// co-admitted on a shared session. Estimates and choices are deterministic
// functions of the catalog statistics and cost constants, so any drift in
// cardinality estimation, costing, or enumeration shows up here as a diff.
func TestGoldenPlans(t *testing.T) {
	const q5sql = `EXPLAIN SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM region
		JOIN nation ON n_regionkey = r_regionkey
		JOIN customer ON c_nationkey = n_nationkey
		JOIN orders ON o_custkey = c_custkey
		JOIN lineitem ON l_orderkey = o_orderkey
		JOIN supplier ON s_suppkey = l_suppkey AND s_nationkey = c_nationkey
		WHERE r_name = 'ASIA'
		  AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01'
		GROUP BY n_name ORDER BY revenue DESC`

	mkEngine := func(obj opt.Objective) *engine.Engine {
		prof := engine.ProfileCommercial()
		prof.WorkAmplification = 20
		prof.Objective = obj
		e := engine.New(prof, system.NewSUT())
		tpch.NewGenerator(0.01, 42).Load(e.Catalog(),
			tpch.Region, tpch.Nation, tpch.Supplier, tpch.Customer, tpch.Orders, tpch.Lineitem)
		e.WarmAll()
		return e
	}

	var b strings.Builder
	for _, obj := range []opt.Objective{opt.MinimizeLatency(), opt.MinimizeJoules()} {
		e := mkEngine(obj)
		out, err := sql.Explain(e, q5sql)
		if err != nil {
			t.Fatalf("explain under %s: %v", obj, err)
		}
		fmt.Fprintf(&b, "== EXPLAIN Q5, objective %s ==\n%s\n", obj, out)
	}

	// The shared-scan flip: with the whole ten-query Q5 batch co-admitted,
	// the joules objective rides the shared pass while latency stays
	// private.
	e := mkEngine(opt.Objective{})
	lg, base, err := opt.Extract(tpch.Q5(e.Catalog(), "ASIA", 1994))
	if err != nil {
		t.Fatal(err)
	}
	env, _ := e.OptimizerEnv()
	env.SharedConcurrency = 10
	for _, obj := range []opt.Objective{opt.MinimizeLatency(), opt.MinimizeJoules()} {
		ch, err := opt.Optimize(lg, base, env, obj)
		if err != nil {
			t.Fatal(err)
		}
		out, err := opt.Explain(lg, env, ch)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "== Q5 at shared concurrency 10, objective %s ==\n%s\n", obj, out)
	}

	checkGolden(t, "plans", b.String())
}
