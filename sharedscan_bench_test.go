// Benchmark for the shared-scan subsystem: N concurrent non-mergeable
// selections served by one circular heap pass (via QED's shared-scan
// flush) versus the sequential fallback. ns/op is real Go wall-clock; the
// headline simulated metrics — joules-per-query and buffer-pool touches —
// are reported via b.ReportMetric, and joules-per-query falls as N grows
// because the pass's I/O and page streaming are amortized across the
// batch.
package main

import (
	"fmt"
	"testing"

	"ecodb/internal/core"
	"ecodb/internal/energy"
	"ecodb/internal/engine"
	"ecodb/internal/mqo"
	"ecodb/internal/tpch"
	"ecodb/internal/workload"
)

// BenchmarkSharedScan sweeps batch size over the band-selection workload
// (range predicates mqo.Merge rejects) on the warm commercial profile.
func BenchmarkSharedScan(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			prof := engine.ProfileCommercial()
			sys := core.NewSystem(prof)
			tpch.NewGenerator(0.01, 42).Load(sys.Engine.Catalog(), tpch.Lineitem)
			sys.Engine.WarmAll()
			clock := sys.Machine.Clock
			trace := sys.Machine.CPU.Trace()
			queries := workload.NewQueries("band", tpch.QuantityBandWorkload(sys.Engine.Catalog(), n))
			b.ResetTimer()

			var perQuery energy.Joules
			var pool int64
			for i := 0; i < b.N; i++ {
				qed := core.NewQED(sys, 2, mqo.OrChain)
				qed.SharedScan = true
				p0 := sys.Engine.Pool().Stats()
				t0 := clock.Now()
				qed.RunBatch(queries)
				perQuery = energy.PerQuery(trace.Energy(t0, clock.Now()), n)
				p1 := sys.Engine.Pool().Stats()
				pool = p1.Hits + p1.Misses - p0.Hits - p0.Misses
			}
			b.ReportMetric(float64(perQuery), "J/query")
			b.ReportMetric(float64(pool), "poolreads")
		})
	}
}

// BenchmarkSharedScanVsSequential reports the same batch executed without
// sharing, for the wall-clock and joules delta.
func BenchmarkSharedScanVsSequential(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			prof := engine.ProfileCommercial()
			sys := core.NewSystem(prof)
			tpch.NewGenerator(0.01, 42).Load(sys.Engine.Catalog(), tpch.Lineitem)
			sys.Engine.WarmAll()
			clock := sys.Machine.Clock
			trace := sys.Machine.CPU.Trace()
			queries := workload.NewQueries("band", tpch.QuantityBandWorkload(sys.Engine.Catalog(), n))
			b.ResetTimer()

			var perQuery energy.Joules
			for i := 0; i < b.N; i++ {
				t0 := clock.Now()
				workload.RunSequential(sys.Engine, clock, queries)
				perQuery = energy.PerQuery(trace.Energy(t0, clock.Now()), n)
			}
			b.ReportMetric(float64(perQuery), "J/query")
		})
	}
}
